// End-to-end integration tests: all four strategies learn on the tiny
// task, full-run determinism, paper-shape assertions (GlueFL uses less
// downstream bandwidth than STC/FedAvg under client sampling), and the
// analysis helpers on real runs.
#include <cmath>

#include <gtest/gtest.h>

#include "analysis/convergence.h"
#include "analysis/report.h"
#include "fl/engine.h"
#include "strategies/factory.h"
#include "test_util.h"

namespace gluefl {
namespace {

using testing::tiny_proxy;
using testing::tiny_run_config;
using testing::tiny_spec;
using testing::tiny_train_config;

SimEngine make_engine(int rounds, uint64_t seed = 42) {
  auto rc = tiny_run_config(rounds, 6, seed);
  return SimEngine(make_synthetic_dataset(tiny_spec()), tiny_proxy(),
                   make_datacenter_env(), tiny_train_config(), rc);
}

GlueFlConfig tiny_gluefl_config() {
  GlueFlConfig cfg;
  cfg.q = 0.2;
  cfg.q_shr = 0.15;
  cfg.regen_every = 8;
  cfg.sticky_group_size = 24;
  cfg.sticky_per_round = 4;
  return cfg;
}

RunResult run_named(const std::string& name, int rounds, uint64_t seed = 42) {
  auto eng = make_engine(rounds, seed);
  if (name == "gluefl") {
    GlueFlStrategy s(tiny_gluefl_config());
    return eng.run(s);
  }
  auto s = make_strategy(name, 6, "shufflenet");
  return eng.run(*s);
}

TEST(Integration, AllStrategiesBeatChance) {
  // 4 classes -> chance is 25%.
  for (const char* name : {"fedavg", "stc", "apf"}) {
    const auto res = run_named(name, 40);
    EXPECT_GT(res.best_accuracy(), 0.5) << name;
  }
  const auto res = run_named("gluefl", 40);
  EXPECT_GT(res.best_accuracy(), 0.5);
}

TEST(Integration, FullRunIsDeterministic) {
  const auto a = run_named("gluefl", 15, 7);
  const auto b = run_named("gluefl", 15, 7);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].down_bytes, b.rounds[i].down_bytes);
    EXPECT_DOUBLE_EQ(a.rounds[i].up_bytes, b.rounds[i].up_bytes);
    if (!std::isnan(a.rounds[i].test_acc)) {
      EXPECT_DOUBLE_EQ(a.rounds[i].test_acc, b.rounds[i].test_acc);
    }
  }
}

TEST(Integration, DifferentSeedsDiverge) {
  // FedAvg byte totals are seed-invariant by construction (full model every
  // round), so divergence must show up in the learning curve instead.
  const auto a = run_named("fedavg", 10, 1);
  const auto b = run_named("fedavg", 10, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    const double aa = a.rounds[i].test_acc;
    const double bb = b.rounds[i].test_acc;
    if (!std::isnan(aa) && !std::isnan(bb) && aa != bb) any_diff = true;
    if (a.rounds[i].train_loss != b.rounds[i].train_loss) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Integration, GlueFlUsesLeastDownstream) {
  // The paper's headline: under client sampling GlueFL consumes the least
  // downstream volume; STC fails to beat FedAvg by much (or at all).
  const int rounds = 30;
  const auto gluefl = run_named("gluefl", rounds);
  const auto stc = run_named("stc", rounds);
  const auto fedavg = run_named("fedavg", rounds);
  const double g = gluefl.totals().down_gb;
  const double s = stc.totals().down_gb;
  const double f = fedavg.totals().down_gb;
  EXPECT_LT(g, s);
  EXPECT_LT(g, f);
}

TEST(Integration, MaskingSavesUpstream) {
  const int rounds = 20;
  const auto stc = run_named("stc", rounds);
  const auto fedavg = run_named("fedavg", rounds);
  EXPECT_LT(stc.totals().up_gb, fedavg.totals().up_gb * 0.6);
}

TEST(Integration, UpstreamOfGlueFlComparableToStc) {
  const int rounds = 20;
  const auto gluefl = run_named("gluefl", rounds);
  const auto stc = run_named("stc", rounds);
  // Same q -> same order of magnitude of upload.
  EXPECT_LT(gluefl.totals().up_gb, stc.totals().up_gb * 1.6);
  EXPECT_GT(gluefl.totals().up_gb, stc.totals().up_gb * 0.4);
}

TEST(Integration, AvailabilityReducesParticipation) {
  auto spec = tiny_spec();
  auto rc = tiny_run_config(10, 6, 42);
  rc.use_availability = true;
  SimEngine eng(make_synthetic_dataset(spec), tiny_proxy(), make_edge_env(),
                tiny_train_config(), rc);
  FedAvgStrategy s;
  const auto res = eng.run(s);
  // Rounds still executed; invitations can dip below the OC target but
  // participants are bounded by K.
  for (const auto& r : res.rounds) {
    EXPECT_LE(r.num_included, 6);
    EXPECT_GE(r.num_included, 1);
  }
}

TEST(Integration, OvercommitTradesBytesForTime) {
  auto run_with_oc = [&](double oc) {
    auto rc = tiny_run_config(15, 6, 42);
    rc.overcommit = oc;
    SimEngine eng(make_synthetic_dataset(tiny_spec()), tiny_proxy(),
                  make_edge_env(), tiny_train_config(), rc);
    FedAvgStrategy s;
    return eng.run(s);
  };
  const auto lean = run_with_oc(1.0);
  const auto oc = run_with_oc(1.5);
  // More invitations -> more downstream bytes...
  EXPECT_GT(oc.totals().down_gb, lean.totals().down_gb);
  // ...but a faster round (stragglers cut).
  EXPECT_LT(oc.totals().wall_hours, lean.totals().wall_hours * 1.05);
}

TEST(Analysis, CommonTargetIsReachableByAll) {
  std::vector<LabeledRun> runs;
  runs.push_back({"fedavg", run_named("fedavg", 25)});
  runs.push_back({"gluefl", run_named("gluefl", 25)});
  const double target = common_target_accuracy(runs, 0.01);
  EXPECT_GT(target, 0.2);
  for (const auto& r : runs) {
    EXPECT_GE(r.result.rounds_to_accuracy(target), 0) << r.label;
  }
}

TEST(Analysis, CostTableHasOneRowPerRun) {
  std::vector<LabeledRun> runs;
  runs.push_back({"fedavg", run_named("fedavg", 10)});
  runs.push_back({"stc", run_named("stc", 10)});
  const auto table = make_cost_table(runs, 0.3);
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string s = table.to_string();
  EXPECT_NE(s.find("fedavg"), std::string::npos);
  EXPECT_NE(s.find("stc"), std::string::npos);
}

TEST(Analysis, AccuracySeriesFormatting) {
  std::vector<LabeledRun> runs;
  runs.push_back({"gluefl", run_named("gluefl", 10)});
  const std::string s = format_accuracy_series(runs);
  EXPECT_NE(s.find("# gluefl"), std::string::npos);
}

TEST(Analysis, TimeBreakdownIsPositive) {
  const auto res = run_named("fedavg", 8);
  const auto b = mean_time_breakdown(res);
  EXPECT_GT(b.download_s, 0.0);
  EXPECT_GT(b.upload_s, 0.0);
  EXPECT_GT(b.compute_s, 0.0);
}

TEST(Analysis, Theorem2ReducesToFedAvg) {
  // Uniform weights, no sticky group: A = 1.
  EXPECT_NEAR(theorem2_variance_term_uniform(100, 10, 0, 0), 1.0, 1e-9);
}

TEST(Analysis, Theorem2PenalizesLargeC) {
  // Larger C means fewer fresh clients per round (K - C shrinks), so the
  // (N-S)^2/(K-C) component of A grows: the variance price of the
  // bandwidth savings that §4 of the paper discusses.
  const double a_small_c = theorem2_variance_term_uniform(2800, 30, 120, 6);
  const double a_large_c = theorem2_variance_term_uniform(2800, 30, 120, 24);
  EXPECT_LT(a_small_c, a_large_c);
}

TEST(Analysis, Theorem2LearningRateShrinksWithRounds) {
  const double a = theorem2_variance_term_uniform(2800, 30, 120, 24);
  const double lr_short = theorem2_learning_rate(30, 10, 1.0, 100, a);
  const double lr_long = theorem2_learning_rate(30, 10, 1.0, 10000, a);
  EXPECT_GT(lr_short, lr_long);
}

}  // namespace
}  // namespace gluefl
