// Shared helpers for the GlueFL test suite: tiny datasets / models that
// keep engine-level tests fast on small machines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/federated_dataset.h"
#include "fl/engine.h"
#include "fl/sim_config.h"
#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/proxies.h"

namespace gluefl::testing {

inline SyntheticSpec tiny_spec(int clients = 60, uint64_t seed = 7) {
  SyntheticSpec s;
  s.name = "tiny";
  s.num_clients = clients;
  s.num_classes = 4;
  s.feature_dim = 8;
  s.dirichlet_alpha = 0.5;
  s.class_sep = 2.5;
  s.noise_sd = 0.8;
  s.label_noise = 0.0;
  s.size_mu_log = 3.3;
  s.size_sigma_log = 0.4;
  s.min_samples = 10;
  s.max_samples = 60;
  s.test_samples = 200;
  s.seed = seed;
  return s;
}

/// Tiny two-layer MLP proxy matching tiny_spec dimensions.
inline ModelProxy tiny_proxy(bool with_bn = true) {
  FlatModel m(8, 4);
  m.add(std::make_unique<Linear>(8, 16));
  if (with_bn) m.add(std::make_unique<BatchNorm1d>(16));
  m.add(std::make_unique<ReLU>(16));
  m.add(std::make_unique<Linear>(16, 4));
  m.finalize();
  return ModelProxy{"tiny", std::move(m), 1e6};
}

inline TrainConfig tiny_train_config() {
  TrainConfig t;
  t.local_steps = 4;
  t.batch_size = 8;
  t.lr0 = 0.05;
  return t;
}

inline RunConfig tiny_run_config(int rounds = 20, int k = 6,
                                 uint64_t seed = 42) {
  RunConfig r;
  r.rounds = rounds;
  r.clients_per_round = k;
  r.overcommit = 1.0;
  r.eval_every = 5;
  r.use_availability = false;
  r.seed = seed;
  r.num_threads = 1;
  return r;
}

/// Random ascending support of exactly min(k, dim) coordinates
/// (selection sampling), shared by the wire tests and the fuzz smoke.
inline std::vector<uint32_t> random_support(size_t dim, size_t k, Rng& rng) {
  std::vector<uint32_t> idx;
  size_t need = std::min(k, dim);
  idx.reserve(need);
  for (size_t j = 0; j < dim && need > 0; ++j) {
    const double p = static_cast<double>(need) / static_cast<double>(dim - j);
    if (rng.uniform() < p) {
      idx.push_back(static_cast<uint32_t>(j));
      --need;
    }
  }
  return idx;
}

inline std::vector<float> random_vals(size_t n, Rng& rng, double lo = -2.0,
                                      double hi = 2.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

}  // namespace gluefl::testing
