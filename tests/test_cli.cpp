// CLI layer: argument parsing, `list` output, and small end-to-end `run` /
// `sweep` smokes through run_cli (no process spawning).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace gluefl::cli {
namespace {

std::vector<std::string> argv(std::initializer_list<const char*> parts) {
  return std::vector<std::string>(parts.begin(), parts.end());
}

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult invoke(std::initializer_list<const char*> parts) {
  std::ostringstream out, err;
  const int code = run_cli(argv(parts), out, err);
  return {code, out.str(), err.str()};
}

// ---------------------------------------------------------------- parsing

TEST(CliParse, CommandAndFlagStyles) {
  const ParsedArgs p = parse_args(
      argv({"run", "--strategy", "gluefl", "--rounds=5", "--scale", "0.1"}));
  EXPECT_TRUE(p.error.empty()) << p.error;
  EXPECT_EQ(p.command, "run");
  ASSERT_EQ(p.flags.size(), 3u);
  EXPECT_EQ(p.flags.at("strategy"), "gluefl");
  EXPECT_EQ(p.flags.at("rounds"), "5");
  EXPECT_EQ(p.flags.at("scale"), "0.1");
}

TEST(CliParse, EmptyArgsIsAnError) {
  EXPECT_FALSE(parse_args({}).error.empty());
}

TEST(CliParse, MissingValueIsAnError) {
  const ParsedArgs p = parse_args(argv({"run", "--rounds"}));
  EXPECT_NE(p.error.find("--rounds"), std::string::npos);
}

TEST(CliParse, PositionalTokenIsAnError) {
  const ParsedArgs p = parse_args(argv({"run", "gluefl"}));
  EXPECT_FALSE(p.error.empty());
}

TEST(CliParse, DuplicateFlagIsAnError) {
  const ParsedArgs p =
      parse_args(argv({"run", "--rounds", "5", "--rounds", "6"}));
  EXPECT_NE(p.error.find("duplicate"), std::string::npos);
}

TEST(CliParse, EqualsValueMayContainEquals) {
  const ParsedArgs p = parse_args(argv({"run", "--json=a=b.json"}));
  EXPECT_TRUE(p.error.empty()) << p.error;
  EXPECT_EQ(p.flags.at("json"), "a=b.json");
}

// ---------------------------------------------------------------- list

TEST(CliList, EnumeratesAllRegistries) {
  const CliResult r = invoke({"list"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const auto& name : strategy_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : dataset_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : env_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : model_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(CliList, RejectsUnknownFlags) {
  const CliResult r = invoke({"list", "--bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

// ---------------------------------------------------------------- errors

TEST(CliErrors, UnknownCommand) {
  const CliResult r = invoke({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("frobnicate"), std::string::npos);
}

TEST(CliErrors, UnknownStrategy) {
  const CliResult r = invoke({"run", "--strategy", "zeroth-order"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("zeroth-order"), std::string::npos);
}

TEST(CliErrors, MalformedNumber) {
  const CliResult r = invoke({"run", "--rounds", "abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("abc"), std::string::npos);
}

TEST(CliErrors, IntegerOverflowIsRejectedNotTruncated) {
  // 2^32 + 2 would truncate to 2 through a silent cast to int.
  const CliResult r = invoke({"run", "--rounds", "4294967298"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("rounds"), std::string::npos);
}

TEST(CliErrors, OutOfRangeScale) {
  const CliResult r = invoke({"run", "--scale", "1.5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("scale"), std::string::npos);
}

TEST(CliErrors, HelpExitsCleanly) {
  const CliResult r = invoke({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

// ---------------------------------------------------------------- run

TEST(CliRun, TwoRoundGlueFlSmokeEmitsTableAndJson) {
  const CliResult r =
      invoke({"run", "--strategy", "gluefl", "--dataset", "femnist",
              "--rounds", "2", "--scale", "0.02", "--eval-every", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Human-readable report table.
  EXPECT_NE(r.out.find("round"), std::string::npos);
  EXPECT_NE(r.out.find("best-acc"), std::string::npos);
  // Machine-readable summary with the trajectory.
  EXPECT_NE(r.out.find("JSON summary:"), std::string::npos);
  EXPECT_NE(r.out.find("\"schema\": \"gluefl.run.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"strategy\": \"gluefl\""), std::string::npos);
  EXPECT_NE(r.out.find("\"trajectory\": [{"), std::string::npos);
}

TEST(CliRun, JsonFileFlagWritesTheSummary) {
  const std::string path = "test_cli_run_summary.json";
  const CliResult r =
      invoke({"run", "--strategy", "fedavg", "--dataset", "femnist",
              "--rounds", "1", "--scale", "0.02", "--json", path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream content;
  content << f.rdbuf();
  EXPECT_NE(content.str().find("\"schema\": \"gluefl.run.v1\""),
            std::string::npos);
  EXPECT_NE(content.str().find("\"strategy\": \"fedavg\""), std::string::npos);
  f.close();
  std::remove(path.c_str());
}

// ------------------------------------------------------ agg / topology

TEST(CliAgg, ShardedRunEchoesSettingsInJson) {
  const CliResult r =
      invoke({"run", "--strategy", "fedavg", "--rounds", "1", "--scale",
              "0.02", "--agg", "sharded", "--agg-shards", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"agg\": \"sharded\""), std::string::npos);
  EXPECT_NE(r.out.find("\"agg_shards\": 4"), std::string::npos);
  EXPECT_NE(r.out.find("\"topology\": \"flat\""), std::string::npos);
}

TEST(CliAgg, ShardedIsBitIdenticalToDenseThroughTheCli) {
  const std::initializer_list<const char*> common = {
      "run", "--strategy", "gluefl", "--rounds", "2", "--scale", "0.02",
      "--eval-every", "1"};
  std::vector<std::string> dense(common.begin(), common.end());
  std::vector<std::string> sharded = dense;
  sharded.insert(sharded.end(), {"--agg", "sharded", "--threads", "4"});
  std::ostringstream dout, derr, sout, serr;
  ASSERT_EQ(run_cli(dense, dout, derr), 0) << derr.str();
  ASSERT_EQ(run_cli(sharded, sout, serr), 0) << serr.str();
  // Identical trajectories / totals; only the echoed settings may differ.
  const auto traj = [](const std::string& s) {
    return s.substr(s.find("\"best_accuracy\""));
  };
  EXPECT_EQ(traj(dout.str()), traj(sout.str()));
}

TEST(CliAgg, ShardsBelowOneRejected) {
  const CliResult r = invoke({"run", "--agg", "sharded", "--agg-shards", "0",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--agg-shards"), std::string::npos);
}

TEST(CliAgg, ShardsRequireShardedBackend) {
  const CliResult r = invoke({"run", "--agg-shards", "4", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--agg-shards requires --agg=sharded"),
            std::string::npos);
}

TEST(CliAgg, UnknownBackendRejected) {
  const CliResult r = invoke({"run", "--agg", "turbo", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("turbo"), std::string::npos);
}

TEST(CliTopology, HierarchicalRunEchoesTopology) {
  const CliResult r = invoke({"run", "--strategy", "fedavg", "--rounds", "1",
                              "--scale", "0.02", "--topology", "hier:2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"topology\": \"hier:2\""), std::string::npos);
  EXPECT_NE(r.out.find("topology=hier:2"), std::string::npos);
}

TEST(CliTopology, ZeroEdgesRejected) {
  const CliResult r = invoke({"run", "--topology", "hier:0", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("hier:<E>"), std::string::npos);
}

TEST(CliTopology, MalformedSpecRejected) {
  for (const char* spec : {"hier", "hier:", "hier:abc", "ring:3"}) {
    const CliResult r = invoke({"run", "--topology", spec, "--rounds", "1"});
    EXPECT_EQ(r.code, 2) << spec;
  }
}

TEST(CliTopology, MoreEdgesThanClientsRejected) {
  // femnist at scale 0.02 has well under 999999 clients.
  const CliResult r = invoke({"run", "--topology", "hier:999999", "--rounds",
                              "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("more edges than the population"), std::string::npos);
}

TEST(CliTopology, SweepAcceptsAggAndTopology) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "1", "--scale",
              "0.02", "--q", "0.2", "--agg", "sharded", "--topology",
              "hier:2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"agg\": \"sharded\""), std::string::npos);
  EXPECT_NE(r.out.find("\"topology\": \"hier:2\""), std::string::npos);
}

// ---------------------------------------------------------------- wire

TEST(CliWire, DefaultsToEncodedAndEchoesInJson) {
  const CliResult r = invoke({"run", "--rounds", "1", "--eval-every", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"encoded\""), std::string::npos);
  // Measured per-round byte fields ride the trajectory entries.
  EXPECT_NE(r.out.find("\"round_up_bytes\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cum_up_gb\""), std::string::npos);
}

TEST(CliWire, AnalyticModeAcceptedForAbRegression) {
  const CliResult r = invoke({"run", "--rounds", "1", "--eval-every", "1",
                              "--scale", "0.02", "--wire", "analytic"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"analytic\""), std::string::npos);
}

TEST(CliWire, UnknownModeRejected) {
  const CliResult r = invoke({"run", "--wire", "telepathy", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("wire mode"), std::string::npos);
}

TEST(CliWire, SweepEchoesWireMode) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "1", "--scale",
              "0.02", "--q", "0.2", "--wire", "analytic"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"analytic\""), std::string::npos);
}

// ---------------------------------------------------------------- async

TEST(CliAsync, DefaultBufferClampsToLoweredConcurrency) {
  // femnist's K is 30; with only --async-conc lowered, the buffer default
  // must clamp to N rather than erroring about an unset --async-buffer.
  const CliResult r = invoke({"run", "--exec=async", "--rounds", "1",
                              "--scale", "0.02", "--async-conc", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"buffer_size\": 5"), std::string::npos);
}

TEST(CliAsync, BufferLargerThanConcurrencyRejected) {
  const CliResult r =
      invoke({"run", "--exec=async", "--rounds", "1", "--scale", "0.02",
              "--async-buffer", "50", "--async-conc", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("must not exceed --async-conc"), std::string::npos);
}

TEST(CliAsync, SweepRejectsBufferArmAboveConcurrency) {
  const CliResult r =
      invoke({"sweep", "--exec=async", "--rounds", "1", "--scale", "0.02",
              "--async-buffer", "3,50", "--async-conc", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("must not exceed --async-conc"), std::string::npos);
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);  // no arm ran
}

TEST(CliAsync, RunEmitsAsyncBlockAndStalenessColumn) {
  const CliResult r =
      invoke({"run", "--exec=async", "--strategy", "async-fedbuff",
              "--dataset", "femnist", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--async-buffer", "4", "--async-conc", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("staleness"), std::string::npos);
  EXPECT_NE(r.out.find("\"exec\": \"async\""), std::string::npos);
  EXPECT_NE(r.out.find("\"async\": {\"buffer_size\": 4"), std::string::npos);
  EXPECT_NE(r.out.find("\"trajectory\": [{"), std::string::npos);
}

TEST(CliAsync, DefaultStrategyUnderAsyncExecIsFedBuff) {
  const CliResult r = invoke({"run", "--exec=async", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"strategy\": \"async-fedbuff\""), std::string::npos);
}

TEST(CliAsync, SyncStrategyRejectedUnderAsyncExec) {
  const CliResult r = invoke({"run", "--exec=async", "--strategy", "gluefl",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("gluefl"), std::string::npos);
  EXPECT_NE(r.err.find("async-fedbuff"), std::string::npos);
}

TEST(CliAsync, OvercommitRejectedUnderAsyncExec) {
  const CliResult r = invoke({"run", "--exec=async", "--overcommit", "2.0",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--overcommit requires --exec=sync"),
            std::string::npos);
}

TEST(CliAsync, AsyncFlagsRequireAsyncExec) {
  const CliResult r = invoke({"run", "--async-buffer", "4", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--async-buffer requires --exec=async"),
            std::string::npos);
}

TEST(CliAsync, RejectsUnknownExecMode) {
  const CliResult r = invoke({"run", "--exec", "turbo", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("turbo"), std::string::npos);
}

TEST(CliAsync, RejectsBadStalenessMode) {
  const CliResult r = invoke({"run", "--exec=async", "--staleness", "linear",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("linear"), std::string::npos);
}

TEST(CliAsync, JsonIsIdenticalAcrossThreadCounts) {
  const CliResult t1 =
      invoke({"run", "--exec=async", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--threads", "1"});
  const CliResult t4 =
      invoke({"run", "--exec=async", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--threads", "4"});
  ASSERT_EQ(t1.code, 0) << t1.err;
  ASSERT_EQ(t4.code, 0) << t4.err;
  EXPECT_EQ(t1.out, t4.out);
}

TEST(CliAsync, SweepGridsBufferAndAlpha) {
  const CliResult r =
      invoke({"sweep", "--exec=async", "--dataset", "femnist", "--rounds", "2",
              "--scale", "0.02", "--async-buffer", "3,6", "--staleness-alpha",
              "0.0,0.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("4 arms"), std::string::npos);
  EXPECT_NE(r.out.find("K=3 alpha=0.00"), std::string::npos);
  EXPECT_NE(r.out.find("K=6 alpha=0.50"), std::string::npos);
  EXPECT_NE(r.out.find("\"exec\": \"async\""), std::string::npos);
}

TEST(CliAsync, SweepRejectsFractionalBufferInsteadOfTruncating) {
  const CliResult r = invoke({"sweep", "--exec=async", "--async-buffer",
                              "3.7", "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--async-buffer"), std::string::npos);
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);  // no arm ran
}

TEST(CliAsync, SweepRejectsSyncGridFlagsUnderAsync) {
  const CliResult r = invoke({"sweep", "--exec=async", "--q", "0.2",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--q requires --exec=sync"), std::string::npos);
}

// ---------------------------------------------------------------- sweep

TEST(CliSweep, TwoArmGridReportsCostTable) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "2", "--scale",
              "0.02", "--q", "0.2", "--q-shr", "0.05,0.1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 arms"), std::string::npos);
  EXPECT_NE(r.out.find("q_shr=5.0%"), std::string::npos);
  EXPECT_NE(r.out.find("q_shr=10.0%"), std::string::npos);
  EXPECT_NE(r.out.find("\"schema\": \"gluefl.sweep.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("target_accuracy"), std::string::npos);
}

TEST(CliSweep, ValidatesGridBeforeRunningAnyArm) {
  const CliResult r = invoke({"sweep", "--dataset", "femnist", "--rounds", "1",
                              "--scale", "0.02", "--q", "0.2,1.5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--q"), std::string::npos);
  // The valid q=0.2 arm must not have executed first.
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);
}

TEST(CliSweep, RejectsOversizedGrid) {
  // 5 * 5 * 3 = 75 arms > 64.
  const CliResult r = invoke(
      {"sweep", "--q", "0.1,0.2,0.3,0.4,0.5", "--q-shr",
       "0.01,0.02,0.03,0.04,0.05", "--sticky-c", "6,12,18"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("75"), std::string::npos);
}

}  // namespace
}  // namespace gluefl::cli
