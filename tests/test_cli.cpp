// CLI layer: argument parsing, `list` output, and small end-to-end `run` /
// `sweep` smokes through run_cli (no process spawning).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "ckpt/checkpoint.h"

namespace gluefl::cli {
namespace {

std::vector<std::string> argv(std::initializer_list<const char*> parts) {
  return std::vector<std::string>(parts.begin(), parts.end());
}

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult invoke(std::initializer_list<const char*> parts) {
  std::ostringstream out, err;
  const int code = run_cli(argv(parts), out, err);
  return {code, out.str(), err.str()};
}

// ---------------------------------------------------------------- parsing

TEST(CliParse, CommandAndFlagStyles) {
  const ParsedArgs p = parse_args(
      argv({"run", "--strategy", "gluefl", "--rounds=5", "--scale", "0.1"}));
  EXPECT_TRUE(p.error.empty()) << p.error;
  EXPECT_EQ(p.command, "run");
  ASSERT_EQ(p.flags.size(), 3u);
  EXPECT_EQ(p.flags.at("strategy"), "gluefl");
  EXPECT_EQ(p.flags.at("rounds"), "5");
  EXPECT_EQ(p.flags.at("scale"), "0.1");
}

TEST(CliParse, EmptyArgsIsAnError) {
  EXPECT_FALSE(parse_args({}).error.empty());
}

TEST(CliParse, MissingValueIsAnError) {
  const ParsedArgs p = parse_args(argv({"run", "--rounds"}));
  EXPECT_NE(p.error.find("--rounds"), std::string::npos);
}

TEST(CliParse, PositionalTokenIsCollectedForTheCommand) {
  // parse_args collects positionals (resume consumes its checkpoint path
  // this way); every other command rejects them at dispatch.
  const ParsedArgs p = parse_args(argv({"run", "gluefl"}));
  EXPECT_TRUE(p.error.empty()) << p.error;
  ASSERT_EQ(p.positionals.size(), 1u);
  EXPECT_EQ(p.positionals[0], "gluefl");
}

TEST(CliParse, PositionalRejectedByRunSweepList) {
  for (const char* cmd : {"run", "sweep", "list"}) {
    const CliResult r = invoke({cmd, "stray"});
    EXPECT_EQ(r.code, 2) << cmd;
    EXPECT_NE(r.err.find("stray"), std::string::npos) << cmd;
  }
}

TEST(CliParse, DuplicateFlagIsAnError) {
  const ParsedArgs p =
      parse_args(argv({"run", "--rounds", "5", "--rounds", "6"}));
  EXPECT_NE(p.error.find("duplicate"), std::string::npos);
}

TEST(CliParse, EqualsValueMayContainEquals) {
  const ParsedArgs p = parse_args(argv({"run", "--json=a=b.json"}));
  EXPECT_TRUE(p.error.empty()) << p.error;
  EXPECT_EQ(p.flags.at("json"), "a=b.json");
}

// ---------------------------------------------------------------- list

TEST(CliList, EnumeratesAllRegistries) {
  const CliResult r = invoke({"list"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const auto& name : strategy_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : dataset_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : env_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  for (const auto& name : model_names()) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
}

TEST(CliList, RejectsUnknownFlags) {
  const CliResult r = invoke({"list", "--bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

// ---------------------------------------------------------------- errors

TEST(CliErrors, UnknownCommand) {
  const CliResult r = invoke({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("frobnicate"), std::string::npos);
}

TEST(CliErrors, UnknownStrategy) {
  const CliResult r = invoke({"run", "--strategy", "zeroth-order"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("zeroth-order"), std::string::npos);
}

TEST(CliErrors, MalformedNumber) {
  const CliResult r = invoke({"run", "--rounds", "abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("abc"), std::string::npos);
}

TEST(CliErrors, IntegerOverflowIsRejectedNotTruncated) {
  // 2^32 + 2 would truncate to 2 through a silent cast to int.
  const CliResult r = invoke({"run", "--rounds", "4294967298"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("rounds"), std::string::npos);
}

TEST(CliErrors, OutOfRangeScale) {
  const CliResult r = invoke({"run", "--scale", "1.5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("scale"), std::string::npos);
}

TEST(CliErrors, HelpExitsCleanly) {
  const CliResult r = invoke({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("usage"), std::string::npos);
}

// ---------------------------------------------------------------- run

TEST(CliRun, TwoRoundGlueFlSmokeEmitsTableAndJson) {
  const CliResult r =
      invoke({"run", "--strategy", "gluefl", "--dataset", "femnist",
              "--rounds", "2", "--scale", "0.02", "--eval-every", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  // Human-readable report table.
  EXPECT_NE(r.out.find("round"), std::string::npos);
  EXPECT_NE(r.out.find("best-acc"), std::string::npos);
  // Machine-readable summary with the trajectory.
  EXPECT_NE(r.out.find("JSON summary:"), std::string::npos);
  EXPECT_NE(r.out.find("\"schema\": \"gluefl.run.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("\"strategy\": \"gluefl\""), std::string::npos);
  EXPECT_NE(r.out.find("\"trajectory\": [{"), std::string::npos);
}

TEST(CliRun, JsonFileFlagWritesTheSummary) {
  const std::string path = "test_cli_run_summary.json";
  const CliResult r =
      invoke({"run", "--strategy", "fedavg", "--dataset", "femnist",
              "--rounds", "1", "--scale", "0.02", "--json", path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream content;
  content << f.rdbuf();
  EXPECT_NE(content.str().find("\"schema\": \"gluefl.run.v1\""),
            std::string::npos);
  EXPECT_NE(content.str().find("\"strategy\": \"fedavg\""), std::string::npos);
  f.close();
  std::remove(path.c_str());
}

// ------------------------------------------------------ agg / topology

TEST(CliAgg, ShardedRunEchoesSettingsInJson) {
  const CliResult r =
      invoke({"run", "--strategy", "fedavg", "--rounds", "1", "--scale",
              "0.02", "--agg", "sharded", "--agg-shards", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"agg\": \"sharded\""), std::string::npos);
  EXPECT_NE(r.out.find("\"agg_shards\": 4"), std::string::npos);
  EXPECT_NE(r.out.find("\"topology\": \"flat\""), std::string::npos);
}

TEST(CliAgg, ShardedIsBitIdenticalToDenseThroughTheCli) {
  const std::initializer_list<const char*> common = {
      "run", "--strategy", "gluefl", "--rounds", "2", "--scale", "0.02",
      "--eval-every", "1"};
  std::vector<std::string> dense(common.begin(), common.end());
  std::vector<std::string> sharded = dense;
  sharded.insert(sharded.end(), {"--agg", "sharded", "--threads", "4"});
  std::ostringstream dout, derr, sout, serr;
  ASSERT_EQ(run_cli(dense, dout, derr), 0) << derr.str();
  ASSERT_EQ(run_cli(sharded, sout, serr), 0) << serr.str();
  // Identical trajectories / totals; only the echoed settings may differ.
  const auto traj = [](const std::string& s) {
    return s.substr(s.find("\"best_accuracy\""));
  };
  EXPECT_EQ(traj(dout.str()), traj(sout.str()));
}

TEST(CliAgg, ShardsBelowOneRejected) {
  const CliResult r = invoke({"run", "--agg", "sharded", "--agg-shards", "0",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--agg-shards"), std::string::npos);
}

TEST(CliAgg, ShardsRequireShardedBackend) {
  const CliResult r = invoke({"run", "--agg-shards", "4", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--agg-shards requires --agg=sharded"),
            std::string::npos);
}

TEST(CliAgg, UnknownBackendRejected) {
  const CliResult r = invoke({"run", "--agg", "turbo", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("turbo"), std::string::npos);
}

TEST(CliTopology, HierarchicalRunEchoesTopology) {
  const CliResult r = invoke({"run", "--strategy", "fedavg", "--rounds", "1",
                              "--scale", "0.02", "--topology", "hier:2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"topology\": \"hier:2\""), std::string::npos);
  EXPECT_NE(r.out.find("topology=hier:2"), std::string::npos);
}

TEST(CliTopology, ZeroEdgesRejected) {
  const CliResult r = invoke({"run", "--topology", "hier:0", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("hier:<E>"), std::string::npos);
}

TEST(CliTopology, MalformedSpecRejected) {
  for (const char* spec : {"hier", "hier:", "hier:abc", "ring:3"}) {
    const CliResult r = invoke({"run", "--topology", spec, "--rounds", "1"});
    EXPECT_EQ(r.code, 2) << spec;
  }
}

TEST(CliTopology, MoreEdgesThanClientsRejected) {
  // femnist at scale 0.02 has well under 999999 clients.
  const CliResult r = invoke({"run", "--topology", "hier:999999", "--rounds",
                              "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("more edges than the population"), std::string::npos);
}

TEST(CliTopology, SweepAcceptsAggAndTopology) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "1", "--scale",
              "0.02", "--q", "0.2", "--agg", "sharded", "--topology",
              "hier:2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"agg\": \"sharded\""), std::string::npos);
  EXPECT_NE(r.out.find("\"topology\": \"hier:2\""), std::string::npos);
}

// ---------------------------------------------------------------- wire

TEST(CliWire, DefaultsToEncodedAndEchoesInJson) {
  const CliResult r = invoke({"run", "--rounds", "1", "--eval-every", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"encoded\""), std::string::npos);
  // Measured per-round byte fields ride the trajectory entries.
  EXPECT_NE(r.out.find("\"round_up_bytes\""), std::string::npos);
  EXPECT_NE(r.out.find("\"cum_up_gb\""), std::string::npos);
}

TEST(CliWire, AnalyticModeAcceptedForAbRegression) {
  const CliResult r = invoke({"run", "--rounds", "1", "--eval-every", "1",
                              "--scale", "0.02", "--wire", "analytic"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"analytic\""), std::string::npos);
}

TEST(CliWire, UnknownModeRejected) {
  const CliResult r = invoke({"run", "--wire", "telepathy", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("wire mode"), std::string::npos);
}

TEST(CliWire, SweepEchoesWireMode) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "1", "--scale",
              "0.02", "--q", "0.2", "--wire", "analytic"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"wire\": \"analytic\""), std::string::npos);
}

// ---------------------------------------------------------------- async

TEST(CliAsync, DefaultBufferClampsToLoweredConcurrency) {
  // femnist's K is 30; with only --async-conc lowered, the buffer default
  // must clamp to N rather than erroring about an unset --async-buffer.
  const CliResult r = invoke({"run", "--exec=async", "--rounds", "1",
                              "--scale", "0.02", "--async-conc", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"buffer_size\": 5"), std::string::npos);
}

TEST(CliAsync, BufferLargerThanConcurrencyRejected) {
  const CliResult r =
      invoke({"run", "--exec=async", "--rounds", "1", "--scale", "0.02",
              "--async-buffer", "50", "--async-conc", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("must not exceed --async-conc"), std::string::npos);
}

TEST(CliAsync, SweepRejectsBufferArmAboveConcurrency) {
  const CliResult r =
      invoke({"sweep", "--exec=async", "--rounds", "1", "--scale", "0.02",
              "--async-buffer", "3,50", "--async-conc", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("must not exceed --async-conc"), std::string::npos);
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);  // no arm ran
}

TEST(CliAsync, RunEmitsAsyncBlockAndStalenessColumn) {
  const CliResult r =
      invoke({"run", "--exec=async", "--strategy", "async-fedbuff",
              "--dataset", "femnist", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--async-buffer", "4", "--async-conc", "8"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("staleness"), std::string::npos);
  EXPECT_NE(r.out.find("\"exec\": \"async\""), std::string::npos);
  EXPECT_NE(r.out.find("\"async\": {\"buffer_size\": 4"), std::string::npos);
  EXPECT_NE(r.out.find("\"trajectory\": [{"), std::string::npos);
}

TEST(CliAsync, DefaultStrategyUnderAsyncExecIsFedBuff) {
  const CliResult r = invoke({"run", "--exec=async", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"strategy\": \"async-fedbuff\""), std::string::npos);
}

TEST(CliAsync, SyncStrategyRejectedUnderAsyncExec) {
  const CliResult r = invoke({"run", "--exec=async", "--strategy", "gluefl",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("gluefl"), std::string::npos);
  EXPECT_NE(r.err.find("async-fedbuff"), std::string::npos);
}

TEST(CliAsync, OvercommitRejectedUnderAsyncExec) {
  const CliResult r = invoke({"run", "--exec=async", "--overcommit", "2.0",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--overcommit requires --exec=sync"),
            std::string::npos);
}

TEST(CliAsync, AsyncFlagsRequireAsyncExec) {
  const CliResult r = invoke({"run", "--async-buffer", "4", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--async-buffer requires --exec=async"),
            std::string::npos);
}

TEST(CliAsync, RejectsUnknownExecMode) {
  const CliResult r = invoke({"run", "--exec", "turbo", "--rounds", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("turbo"), std::string::npos);
}

TEST(CliAsync, RejectsBadStalenessMode) {
  const CliResult r = invoke({"run", "--exec=async", "--staleness", "linear",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("linear"), std::string::npos);
}

TEST(CliAsync, JsonIsIdenticalAcrossThreadCounts) {
  const CliResult t1 =
      invoke({"run", "--exec=async", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--threads", "1"});
  const CliResult t4 =
      invoke({"run", "--exec=async", "--rounds", "3", "--scale", "0.02",
              "--eval-every", "1", "--threads", "4"});
  ASSERT_EQ(t1.code, 0) << t1.err;
  ASSERT_EQ(t4.code, 0) << t4.err;
  EXPECT_EQ(t1.out, t4.out);
}

TEST(CliAsync, SweepGridsBufferAndAlpha) {
  const CliResult r =
      invoke({"sweep", "--exec=async", "--dataset", "femnist", "--rounds", "2",
              "--scale", "0.02", "--async-buffer", "3,6", "--staleness-alpha",
              "0.0,0.5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("4 arms"), std::string::npos);
  EXPECT_NE(r.out.find("K=3 alpha=0.00"), std::string::npos);
  EXPECT_NE(r.out.find("K=6 alpha=0.50"), std::string::npos);
  EXPECT_NE(r.out.find("\"exec\": \"async\""), std::string::npos);
}

TEST(CliAsync, SweepRejectsFractionalBufferInsteadOfTruncating) {
  const CliResult r = invoke({"sweep", "--exec=async", "--async-buffer",
                              "3.7", "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--async-buffer"), std::string::npos);
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);  // no arm ran
}

TEST(CliAsync, SweepRejectsSyncGridFlagsUnderAsync) {
  const CliResult r = invoke({"sweep", "--exec=async", "--q", "0.2",
                              "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--q requires --exec=sync"), std::string::npos);
}

// ---------------------------------------------------------------- sweep

TEST(CliSweep, TwoArmGridReportsCostTable) {
  const CliResult r =
      invoke({"sweep", "--dataset", "femnist", "--rounds", "2", "--scale",
              "0.02", "--q", "0.2", "--q-shr", "0.05,0.1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("2 arms"), std::string::npos);
  EXPECT_NE(r.out.find("q_shr=5.0%"), std::string::npos);
  EXPECT_NE(r.out.find("q_shr=10.0%"), std::string::npos);
  EXPECT_NE(r.out.find("\"schema\": \"gluefl.sweep.v1\""), std::string::npos);
  EXPECT_NE(r.out.find("target_accuracy"), std::string::npos);
}

TEST(CliSweep, ValidatesGridBeforeRunningAnyArm) {
  const CliResult r = invoke({"sweep", "--dataset", "femnist", "--rounds", "1",
                              "--scale", "0.02", "--q", "0.2,1.5"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--q"), std::string::npos);
  // The valid q=0.2 arm must not have executed first.
  EXPECT_EQ(r.out.find("best-acc"), std::string::npos);
}

TEST(CliSweep, RejectsOversizedGrid) {
  // 5 * 5 * 3 = 75 arms > 64.
  const CliResult r = invoke(
      {"sweep", "--q", "0.1,0.2,0.3,0.4,0.5", "--q-shr",
       "0.01,0.02,0.03,0.04,0.05", "--sticky-c", "6,12,18"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("75"), std::string::npos);
}

// --------------------------------------------------- checkpoint / resume

namespace fs = std::filesystem;

/// RAII scratch directory under the test working directory.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

TEST(CliCkpt, ProvenanceEmbeddedInRunJson) {
  const CliResult r = invoke({"run", "--strategy", "fedavg", "--rounds", "1",
                              "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"provenance\": {\"git_hash\": "), std::string::npos);
  EXPECT_NE(r.out.find("\"build_type\": "), std::string::npos);
}

TEST(CliCkpt, ProvenanceEmbeddedInSweepJson) {
  const CliResult r = invoke({"sweep", "--rounds", "1", "--scale", "0.02"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"provenance\": {\"git_hash\": "), std::string::npos);
}

TEST(CliCkpt, CheckpointEveryBelowOneRejected) {
  const CliResult r = invoke({"run", "--rounds", "2", "--scale", "0.02",
                              "--checkpoint-every", "0", "--checkpoint-dir",
                              "."});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("checkpoint-every"), std::string::npos);
}

TEST(CliCkpt, CheckpointEveryRequiresDir) {
  const CliResult r = invoke(
      {"run", "--rounds", "2", "--scale", "0.02", "--checkpoint-every", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--checkpoint-dir"), std::string::npos);
}

TEST(CliCkpt, MissingCheckpointDirRejected) {
  const CliResult r = invoke({"run", "--rounds", "2", "--scale", "0.02",
                              "--checkpoint-every", "1", "--checkpoint-dir",
                              "no/such/dir/anywhere"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing or not writable"), std::string::npos);
}

TEST(CliCkpt, CrashRoundOutOfRangeRejected) {
  for (const char* bad : {"0", "7"}) {
    const CliResult r = invoke({"run", "--rounds", "6", "--scale", "0.02",
                                "--crash-at-round", bad});
    EXPECT_EQ(r.code, 2) << bad;
    EXPECT_NE(r.err.find("crash-at-round"), std::string::npos) << bad;
  }
}

TEST(CliCkpt, ResumeMissingCheckpointIsACleanError) {
  const CliResult r = invoke({"resume", "no-such-checkpoint.gfc"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("no-such-checkpoint.gfc"), std::string::npos);
  // One clean line, not a CHECK stack line.
  EXPECT_EQ(r.err.find("GLUEFL_CHECK"), std::string::npos);
}

TEST(CliCkpt, ResumeWithoutPathIsAUsageError) {
  const CliResult r = invoke({"resume"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("checkpoint path"), std::string::npos);
}

TEST(CliCkpt, ResumeTruncatedAndCorruptAndWrongVersionRejected) {
  ScratchDir dir("cli_ckpt_bad");
  // Write a real checkpoint first.
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "4", "--scale",
              "0.02", "--checkpoint-every", "2", "--checkpoint-dir",
              dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  const fs::path good = dir.path / "ckpt-00000002.gfc";
  ASSERT_TRUE(fs::exists(good));
  std::ifstream in(good, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  const auto write_variant = [&](const std::string& name,
                                 const std::vector<char>& content) {
    const fs::path p = dir.path / name;
    std::ofstream out(p, std::ios::binary);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    return p.string();
  };

  std::vector<char> truncated(bytes.begin(),
                              bytes.begin() + static_cast<long>(40));
  std::vector<char> corrupt = bytes;
  corrupt[bytes.size() / 2] ^= 0x20;
  std::vector<char> wrong_version = bytes;
  wrong_version[4] = 99;  // format byte

  struct Case {
    std::string path;
    const char* expect;
  };
  const Case cases[] = {
      {write_variant("trunc.gfc", truncated), "truncated"},
      {write_variant("corrupt.gfc", corrupt), "CRC"},
      {write_variant("version.gfc", wrong_version), "version"},
  };
  for (const Case& c : cases) {
    const CliResult r = invoke({"resume", c.path.c_str()});
    EXPECT_EQ(r.code, 1) << c.path;
    EXPECT_NE(r.err.find(c.expect), std::string::npos) << r.err;
  }
}

TEST(CliCkpt, CrashThenResumeReproducesUninterruptedJsonByteExactly) {
  ScratchDir dir("cli_ckpt_e2e");
  const std::string full_json = (dir.path / "full.json").string();
  const std::string resumed_json = (dir.path / "resumed.json").string();

  const CliResult full =
      invoke({"run", "--strategy", "gluefl", "--rounds", "4", "--scale",
              "0.02", "--eval-every", "1", "--json", full_json.c_str()});
  ASSERT_EQ(full.code, 0) << full.err;

  const CliResult crashed =
      invoke({"run", "--strategy", "gluefl", "--rounds", "4", "--scale",
              "0.02", "--eval-every", "1", "--checkpoint-every", "2",
              "--checkpoint-dir", dir.str().c_str(), "--crash-at-round",
              "3"});
  EXPECT_EQ(crashed.code, 3);  // the simulated-crash exit code
  EXPECT_NE(crashed.out.find("simulated crash"), std::string::npos);
  const std::string ckpt = (dir.path / "ckpt-00000002.gfc").string();
  EXPECT_NE(crashed.out.find(ckpt), std::string::npos);

  const CliResult resumed = invoke(
      {"resume", ckpt.c_str(), "--json", resumed_json.c_str()});
  ASSERT_EQ(resumed.code, 0) << resumed.err;

  std::ifstream a(full_json), b(resumed_json);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  ASSERT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());  // byte-identical summary
}

TEST(CliCkpt, AsyncCrashThenResumeMatchesUninterruptedJson) {
  ScratchDir dir("cli_ckpt_async_e2e");
  const std::string full_json = (dir.path / "full.json").string();
  const std::string resumed_json = (dir.path / "resumed.json").string();

  const CliResult full =
      invoke({"run", "--exec", "async", "--rounds", "6", "--scale", "0.02",
              "--eval-every", "2", "--json", full_json.c_str()});
  ASSERT_EQ(full.code, 0) << full.err;

  const CliResult crashed =
      invoke({"run", "--exec", "async", "--rounds", "6", "--scale", "0.02",
              "--eval-every", "2", "--checkpoint-every", "3",
              "--checkpoint-dir", dir.str().c_str(), "--crash-at-round",
              "4"});
  EXPECT_EQ(crashed.code, 3);
  const std::string ckpt = (dir.path / "ckpt-00000003.gfc").string();
  ASSERT_TRUE(fs::exists(ckpt));

  const CliResult resumed = invoke(
      {"resume", ckpt.c_str(), "--json", resumed_json.c_str()});
  ASSERT_EQ(resumed.code, 0) << resumed.err;

  std::ifstream a(full_json), b(resumed_json);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  ASSERT_FALSE(sa.str().empty());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(CliCkpt, ResumeAcceptsThreadOverrideWithIdenticalJson) {
  ScratchDir dir("cli_ckpt_threads");
  const std::string full_json = (dir.path / "full.json").string();
  const std::string resumed_json = (dir.path / "resumed.json").string();

  const CliResult full =
      invoke({"run", "--strategy", "stc", "--rounds", "4", "--scale", "0.02",
              "--threads", "1", "--json", full_json.c_str()});
  ASSERT_EQ(full.code, 0) << full.err;

  const CliResult crashed =
      invoke({"run", "--strategy", "stc", "--rounds", "4", "--scale", "0.02",
              "--threads", "1", "--checkpoint-every", "2",
              "--checkpoint-dir", dir.str().c_str(), "--crash-at-round",
              "3"});
  EXPECT_EQ(crashed.code, 3);

  // Training is thread-count deterministic, so resuming with 4 threads
  // must still match the single-threaded original byte for byte.
  const std::string ckpt = (dir.path / "ckpt-00000002.gfc").string();
  const CliResult resumed =
      invoke({"resume", ckpt.c_str(), "--threads", "4", "--json",
              resumed_json.c_str()});
  ASSERT_EQ(resumed.code, 0) << resumed.err;

  std::ifstream a(full_json), b(resumed_json);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(CliCkpt, TamperedMetaOutOfRangeIsACleanError) {
  // A checkpoint whose CRC has been re-sealed around a nonsense meta
  // value (eval_every=0 would divide by zero in the round loop) must die
  // as one clean CkptError line, never as UB.
  ScratchDir dir("cli_ckpt_tamper");
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "4", "--scale",
              "0.02", "--checkpoint-every", "2", "--checkpoint-dir",
              dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  const std::string good = (dir.path / "ckpt-00000002.gfc").string();

  ckpt::Snapshot snap = ckpt::load_checkpoint(good);
  snap.meta["eval_every"] = "0";
  const std::string bad = (dir.path / "tampered.gfc").string();
  ckpt::save_checkpoint(bad, snap);  // re-seals the CRC

  const CliResult r = invoke({"resume", bad.c_str()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("eval_every"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("out of range"), std::string::npos) << r.err;
}

TEST(CliCkpt, AnyLegalRunConfigurationIsResumable) {
  // Resume's meta validation must accept exactly what run's flag
  // validation accepts — an extreme-but-legal overcommit must not strand
  // the campaign's snapshots.
  ScratchDir dir("cli_ckpt_extreme");
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "4", "--scale",
              "0.02", "--overcommit", "2000", "--checkpoint-every", "2",
              "--checkpoint-dir", dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  const std::string ckpt = (dir.path / "ckpt-00000002.gfc").string();
  const CliResult r = invoke({"resume", ckpt.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(CliCkpt, TamperedRegistryNameIsACleanError) {
  // Unknown agg/wire names must reject as CkptError (exit 1), never fall
  // back to a silent default backend.
  ScratchDir dir("cli_ckpt_registry");
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "4", "--scale",
              "0.02", "--checkpoint-every", "2", "--checkpoint-dir",
              dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  ckpt::Snapshot snap =
      ckpt::load_checkpoint((dir.path / "ckpt-00000002.gfc").string());
  snap.meta["agg"] = "bogus";
  const std::string bad = (dir.path / "bad-agg.gfc").string();
  ckpt::save_checkpoint(bad, snap);
  const CliResult r = invoke({"resume", bad.c_str()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("bogus"), std::string::npos) << r.err;
}

TEST(CliCkpt, ResumeRejectsCrashRoundAtOrBeforeTheBoundary) {
  ScratchDir dir("cli_ckpt_crash_range");
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "4", "--scale",
              "0.02", "--checkpoint-every", "2", "--checkpoint-dir",
              dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  const std::string ckpt = (dir.path / "ckpt-00000002.gfc").string();

  // Boundary 2 is already complete: a crash at 1 or 2 can never fire.
  for (const char* bad : {"1", "2"}) {
    const CliResult r = invoke({"resume", ckpt.c_str(), "--checkpoint-every",
                                "2", "--checkpoint-dir", dir.str().c_str(),
                                "--crash-at-round", bad});
    EXPECT_EQ(r.code, 2) << bad;
    EXPECT_NE(r.err.find("checkpoint boundary"), std::string::npos) << r.err;
  }
  // Boundary 3 is still ahead: the resumed run must crash there.
  const CliResult r = invoke({"resume", ckpt.c_str(), "--crash-at-round",
                              "3"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("simulated crash"), std::string::npos);
}

TEST(CliCkpt, ResumeCrashReportPointsAtTheSourceCheckpoint) {
  // A crash injected before the resumed run's first NEW snapshot must
  // still point the user at the (valid) source checkpoint.
  ScratchDir dir("cli_ckpt_crash_report");
  const CliResult w =
      invoke({"run", "--strategy", "fedavg", "--rounds", "6", "--scale",
              "0.02", "--checkpoint-every", "2", "--checkpoint-dir",
              dir.str().c_str()});
  ASSERT_EQ(w.code, 0) << w.err;
  const std::string ckpt = (dir.path / "ckpt-00000002.gfc").string();

  const CliResult r = invoke({"resume", ckpt.c_str(), "--crash-at-round",
                              "3"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("resume with: gluefl resume " + ckpt),
            std::string::npos)
      << r.out;
}

TEST(CliCkpt, SweepRejectsCheckpointFlags) {
  const CliResult r = invoke({"sweep", "--rounds", "1", "--scale", "0.02",
                              "--checkpoint-every", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("checkpoint-every"), std::string::npos);
}

}  // namespace
}  // namespace gluefl::cli
