#include "fl/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gluefl {
namespace {

RoundRecord rec(int round, double down_gb, double acc,
                double wall_s = 3600.0) {
  RoundRecord r;
  r.round = round;
  r.down_bytes = down_gb * kBytesPerGb;
  r.up_bytes = down_gb * kBytesPerGb / 2.0;
  r.down_time_s = 60.0;
  r.wall_time_s = wall_s;
  r.test_acc = acc;
  return r;
}

TEST(Metrics, SmoothedAccuracyAveragesLastEvals) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.10));
  r.rounds.push_back(rec(1, 1.0, std::nan("")));
  r.rounds.push_back(rec(2, 1.0, 0.30));
  const auto acc = r.smoothed_accuracy(2);
  EXPECT_NEAR(acc[0], 0.10, 1e-12);
  EXPECT_NEAR(acc[1], 0.10, 1e-12);  // carries forward between evals
  EXPECT_NEAR(acc[2], 0.20, 1e-12);  // mean of the last two evals
}

TEST(Metrics, RoundsToAccuracy) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.1));
  r.rounds.push_back(rec(1, 1.0, 0.5));
  r.rounds.push_back(rec(2, 1.0, 0.9));
  EXPECT_EQ(r.rounds_to_accuracy(0.05, 1), 0);
  EXPECT_EQ(r.rounds_to_accuracy(0.4, 1), 1);
  EXPECT_EQ(r.rounds_to_accuracy(0.95, 1), -1);
}

TEST(Metrics, TotalsSumPrefixes) {
  RunResult r;
  r.rounds.push_back(rec(0, 2.0, 0.1));
  r.rounds.push_back(rec(1, 3.0, 0.2));
  const RunTotals all = r.totals();
  EXPECT_NEAR(all.down_gb, 5.0, 1e-9);
  EXPECT_NEAR(all.up_gb, 2.5, 1e-9);
  EXPECT_NEAR(all.total_gb, 7.5, 1e-9);
  EXPECT_NEAR(all.wall_hours, 2.0, 1e-9);
  EXPECT_EQ(all.rounds, 2);
  const RunTotals first = r.totals(0);
  EXPECT_NEAR(first.down_gb, 2.0, 1e-9);
  EXPECT_EQ(first.rounds, 1);
}

TEST(Metrics, TotalsToAccuracyStopsAtTarget) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.1));
  r.rounds.push_back(rec(1, 1.0, 0.8));
  r.rounds.push_back(rec(2, 1.0, 0.9));
  const RunTotals t = r.totals_to_accuracy(0.75, 1);
  EXPECT_TRUE(t.reached_target);
  EXPECT_EQ(t.rounds, 2);  // rounds 0 and 1
  EXPECT_NEAR(t.down_gb, 2.0, 1e-9);
}

TEST(Metrics, TotalsToAccuracyUnreached) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.1));
  const RunTotals t = r.totals_to_accuracy(0.99, 1);
  EXPECT_FALSE(t.reached_target);
  EXPECT_EQ(t.rounds, 1);  // whole run
}

TEST(Metrics, AccuracyVsDownstreamSeries) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.1));
  r.rounds.push_back(rec(1, 1.0, std::nan("")));  // not an eval round
  r.rounds.push_back(rec(2, 1.0, 0.3));
  const auto series = r.accuracy_vs_downstream(1);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0].first, 1.0, 1e-9);
  EXPECT_NEAR(series[1].first, 3.0, 1e-9);  // cumulative includes round 1
  EXPECT_NEAR(series[1].second, 0.3, 1e-12);
}

TEST(Metrics, BestAccuracy) {
  RunResult r;
  r.rounds.push_back(rec(0, 1.0, 0.4));
  r.rounds.push_back(rec(1, 1.0, 0.7));
  r.rounds.push_back(rec(2, 1.0, 0.6));
  EXPECT_NEAR(r.best_accuracy(), 0.7, 1e-12);
}

TEST(Metrics, EmptyRunIsSafe) {
  RunResult r;
  EXPECT_EQ(r.rounds_to_accuracy(0.5), -1);
  EXPECT_EQ(r.totals().rounds, 0);
  EXPECT_TRUE(r.accuracy_vs_downstream().empty());
  EXPECT_DOUBLE_EQ(r.best_accuracy(), 0.0);
}

}  // namespace
}  // namespace gluefl
