// Checkpoint subsystem: io primitives, snapshot codec framing (CRC /
// version / truncation rejection), atomic persistence, and the central
// deterministic-resume contract — for every strategy x execution mode x
// aggregation backend x topology, run-to-boundary-then-resume must be
// bit-identical to the uninterrupted run (params, stats and every
// per-round byte/time metric), across seeds and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "ckpt/io.h"
#include "compress/error_feedback.h"
#include "fl/async_engine.h"
#include "fl/engine.h"
#include "fl/sync_tracker.h"
#include "net/environment.h"
#include "strategies/apf.h"
#include "strategies/async_fedbuff.h"
#include "strategies/fedavg.h"
#include "strategies/gluefl.h"
#include "strategies/stc.h"
#include "test_util.h"

namespace gluefl {
namespace {

using testing::tiny_proxy;
using testing::tiny_run_config;
using testing::tiny_spec;
using testing::tiny_train_config;

// ---------------------------------------------------------------- io

TEST(CkptIo, ScalarAndVarintRoundTrip) {
  ckpt::Writer w;
  w.u8(7);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(UINT64_MAX);
  w.str("gluefl");
  w.f32(-0.0f);
  w.f64(std::numeric_limits<double>::quiet_NaN());

  ckpt::Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), UINT64_MAX);
  EXPECT_EQ(r.str(), "gluefl");
  const float nz = r.f32();
  EXPECT_TRUE(std::signbit(nz) && nz == 0.0f);
  EXPECT_TRUE(std::isnan(r.f64()));
  r.expect_end("test");
}

TEST(CkptIo, TruncatedReadsThrow) {
  ckpt::Writer w;
  w.u32(42);
  ckpt::Reader r(w.buffer().data(), 2);
  EXPECT_THROW(r.u32(), ckpt::CkptError);
}

TEST(CkptIo, HostileLengthFailsBeforeAllocation) {
  // A varint length far beyond the remaining bytes must throw CkptError,
  // not attempt the allocation it describes.
  ckpt::Writer w;
  w.varint(uint64_t{1} << 60);
  ckpt::Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_THROW(r.f32s(), ckpt::CkptError);
}

TEST(CkptIo, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(ckpt::crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

// ------------------------------------------------------ component state

TEST(CkptState, RngStateRoundTripContinuesIdentically) {
  Rng a(123);
  (void)a.normal();  // populate the cached Box-Muller half
  Rng b(0);
  b.set_state(a.state());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(CkptState, SyncTrackerRoundTrip) {
  SyncTracker t(5, 32);
  BitMask m(32);
  m.set(3);
  m.set(17);
  t.record_round_changes(0, m);
  m.set(20);
  t.record_round_changes(1, m);
  t.mark_synced(0, 1);
  t.mark_synced(3, 0);

  ckpt::Writer w;
  t.save_state(w);
  SyncTracker u(5, 32);
  ckpt::Reader r(w.buffer().data(), w.buffer().size());
  u.restore_state(r);
  r.expect_end("sync");
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(u.last_synced_round(c), t.last_synced_round(c));
    EXPECT_EQ(u.sync_bytes(c, 2), t.sync_bytes(c, 2));
    EXPECT_TRUE(u.stale_mask(c, 2) == t.stale_mask(c, 2));
  }
  // The restored tracker keeps recording consecutively.
  u.record_round_changes(2, m);
}

TEST(CkptState, SyncTrackerRejectsShapeMismatch) {
  SyncTracker t(5, 32);
  ckpt::Writer w;
  t.save_state(w);
  SyncTracker u(6, 32);
  ckpt::Reader r(w.buffer().data(), w.buffer().size());
  EXPECT_THROW(u.restore_state(r), ckpt::CkptError);
}

TEST(CkptState, ErrorFeedbackRoundTrip) {
  ErrorFeedback ef(ErrorFeedback::Mode::kRescaled, 4);
  const float h1[4] = {1.0f, -2.0f, 0.5f, 0.0f};
  const float h2[4] = {0.1f, 0.2f, 0.3f, 0.4f};
  ef.store(9, 0.7, h1);
  ef.store(2, 1.3, h2);

  ckpt::Writer w;
  ef.save_state(w);
  ErrorFeedback ef2(ErrorFeedback::Mode::kRescaled, 4);
  ckpt::Reader r(w.buffer().data(), w.buffer().size());
  ef2.restore_state(r);
  r.expect_end("ef");

  EXPECT_EQ(ef2.num_tracked_clients(), 2u);
  std::vector<float> d1(4, 0.0f), d2(4, 0.0f);
  ef.apply(9, 0.7, d1.data());
  ef2.apply(9, 0.7, d2.data());
  EXPECT_EQ(d1, d2);
}

// --------------------------------------------------------- file framing

ckpt::Snapshot tiny_snapshot() {
  ckpt::Snapshot snap;
  snap.meta = {{"strategy", "fedavg"}, {"exec", "sync"}};
  snap.seed = 42;
  snap.dim = 3;
  snap.stat_dim = 1;
  snap.num_clients = 2;
  snap.rounds = 10;
  snap.next_round = 2;
  snap.params = {1.0f, 2.0f, 3.0f};
  snap.stats = {4.0f};
  {
    SyncTracker t(2, 3);
    BitMask m(3);
    m.set(1);
    t.record_round_changes(0, m);
    t.record_round_changes(1, m);
    ckpt::Writer w;
    t.save_state(w);
    snap.sync_state = w.take();
  }
  RoundRecord rec;
  rec.round = 0;
  rec.down_bytes = 123.0;
  snap.history.push_back(rec);
  rec.round = 1;
  snap.history.push_back(rec);
  snap.strategy_id = "fedavg";
  return snap;
}

TEST(CkptFile, EncodeDecodeRoundTrip) {
  const ckpt::Snapshot snap = tiny_snapshot();
  const std::vector<uint8_t> bytes = ckpt::encode_snapshot(snap);
  const ckpt::Snapshot back = ckpt::decode_snapshot(bytes.data(), bytes.size());
  EXPECT_EQ(back.meta, snap.meta);
  EXPECT_EQ(back.seed, snap.seed);
  EXPECT_EQ(back.dim, snap.dim);
  EXPECT_EQ(back.next_round, snap.next_round);
  EXPECT_EQ(back.params, snap.params);
  EXPECT_EQ(back.sync_state, snap.sync_state);
  EXPECT_EQ(back.history.size(), snap.history.size());
  EXPECT_EQ(back.strategy_id, snap.strategy_id);
  EXPECT_FALSE(back.has_async);
}

TEST(CkptFile, CorruptPayloadIsRejectedByCrc) {
  std::vector<uint8_t> bytes = ckpt::encode_snapshot(tiny_snapshot());
  bytes[ckpt::kHeaderBytes + 5] ^= 0x40;
  EXPECT_THROW(ckpt::decode_snapshot(bytes.data(), bytes.size()),
               ckpt::CkptError);
}

TEST(CkptFile, TruncationIsRejected) {
  const std::vector<uint8_t> bytes = ckpt::encode_snapshot(tiny_snapshot());
  for (const size_t keep : {size_t{0}, size_t{4}, size_t{17},
                            bytes.size() - 1}) {
    EXPECT_THROW(ckpt::decode_snapshot(bytes.data(), keep), ckpt::CkptError);
  }
}

TEST(CkptFile, UnknownVersionIsRejected) {
  std::vector<uint8_t> bytes = ckpt::encode_snapshot(tiny_snapshot());
  bytes[4] = ckpt::kFormatVersion + 1;  // format byte
  EXPECT_THROW(ckpt::decode_snapshot(bytes.data(), bytes.size()),
               ckpt::CkptError);
}

TEST(CkptFile, BadMagicIsRejected) {
  std::vector<uint8_t> bytes = ckpt::encode_snapshot(tiny_snapshot());
  bytes[0] ^= 0xFF;
  EXPECT_THROW(ckpt::decode_snapshot(bytes.data(), bytes.size()),
               ckpt::CkptError);
}

TEST(CkptFile, SaveIsAtomicAndLoadable) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("ckpt_test_save");
  fs::create_directories(dir);
  const std::string path = (dir / "snap.gfc").string();
  ckpt::save_checkpoint(path, tiny_snapshot());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // temp was renamed away
  const ckpt::Snapshot back = ckpt::load_checkpoint(path);
  EXPECT_EQ(back.next_round, 2);
  fs::remove_all(dir);
}

TEST(CkptFile, MissingFileIsACleanError) {
  EXPECT_THROW(ckpt::load_checkpoint("no/such/checkpoint.gfc"),
               ckpt::CkptError);
}

// ------------------------------------------------- deterministic resume

struct MatrixConfig {
  uint64_t seed = 42;
  int threads = 1;
  bool sharded = false;
  int edges = 0;  // 0 = flat
  bool encoded = false;
};

constexpr int kRounds = 6;
constexpr int kBoundary = 3;

SimEngine make_matrix_engine(const MatrixConfig& c) {
  RunConfig rc = tiny_run_config(kRounds, 6, c.seed);
  rc.eval_every = 2;
  rc.num_threads = c.threads;
  rc.agg.kind = c.sharded ? AggKind::kSharded : AggKind::kDense;
  rc.topology.num_edges = c.edges;
  rc.wire.mode = c.encoded ? WireMode::kEncoded : WireMode::kAnalytic;
  return SimEngine(make_synthetic_dataset(tiny_spec()), tiny_proxy(),
                   make_datacenter_env(), tiny_train_config(), rc);
}

std::unique_ptr<Strategy> make_matrix_strategy(const std::string& name) {
  if (name == "fedavg") return std::make_unique<FedAvgStrategy>();
  if (name == "stc") {
    StcConfig c;
    c.q = 0.25;
    return std::make_unique<StcStrategy>(c);
  }
  if (name == "apf") {
    ApfConfig c;
    c.check_every = 2;
    c.base_freeze = 2;
    c.max_freeze = 8;
    return std::make_unique<ApfStrategy>(c);
  }
  GlueFlConfig g;
  g.q = 0.3;
  g.q_shr = 0.1;
  g.regen_every = 3;
  g.sticky_group_size = 20;
  g.sticky_per_round = 3;
  return std::make_unique<GlueFlStrategy>(g);
}

/// Captures an in-memory snapshot at the configured boundary and lets the
/// run continue — one run doubles as the uninterrupted reference AND the
/// checkpoint source.
struct CaptureHook final : RoundHook {
  int boundary = kBoundary;
  std::string id;
  const ckpt::Checkpointable* strategy = nullptr;
  ckpt::Snapshot snap;
  bool captured = false;

  void on_round_end(SimEngine& engine, int round, const RunResult& partial,
                    const AsyncRunState* async_state) override {
    if (round + 1 != boundary) return;
    snap = ckpt::snapshot_of(engine, boundary, partial, id, *strategy,
                             async_state, {{"origin", "test"}});
    captured = true;
  }
};

bool same_bits(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, 8);
  std::memcpy(&y, &b, 8);
  return x == y;
}

void expect_identical_runs(const RunResult& ref, const RunResult& res,
                           const std::string& label) {
  ASSERT_EQ(ref.rounds.size(), res.rounds.size()) << label;
  for (size_t i = 0; i < ref.rounds.size(); ++i) {
    const RoundRecord& a = ref.rounds[i];
    const RoundRecord& b = res.rounds[i];
    EXPECT_EQ(a.round, b.round) << label << " round " << i;
    EXPECT_TRUE(same_bits(a.down_bytes, b.down_bytes))
        << label << " down_bytes @" << i;
    EXPECT_TRUE(same_bits(a.up_bytes, b.up_bytes))
        << label << " up_bytes @" << i;
    EXPECT_TRUE(same_bits(a.down_time_s, b.down_time_s))
        << label << " down_time @" << i;
    EXPECT_TRUE(same_bits(a.up_time_s, b.up_time_s))
        << label << " up_time @" << i;
    EXPECT_TRUE(same_bits(a.compute_time_s, b.compute_time_s))
        << label << " compute_time @" << i;
    EXPECT_TRUE(same_bits(a.wall_time_s, b.wall_time_s))
        << label << " wall_time @" << i;
    EXPECT_TRUE(same_bits(a.train_loss, b.train_loss))
        << label << " train_loss @" << i;
    EXPECT_TRUE(same_bits(a.test_acc, b.test_acc))
        << label << " test_acc @" << i;
    EXPECT_EQ(a.num_invited, b.num_invited) << label << " invited @" << i;
    EXPECT_EQ(a.num_included, b.num_included) << label << " included @" << i;
    EXPECT_TRUE(same_bits(a.mean_staleness, b.mean_staleness))
        << label << " staleness @" << i;
    EXPECT_TRUE(same_bits(a.changed_frac, b.changed_frac))
        << label << " changed_frac @" << i;
    EXPECT_TRUE(same_bits(a.mask_overlap, b.mask_overlap))
        << label << " mask_overlap @" << i;
  }
}

void run_sync_matrix(const std::string& strategy_name) {
  const MatrixConfig combos[] = {
      {42, 1, false, 0, false}, {7, 4, false, 0, true},
      {42, 1, true, 0, false},  {7, 4, true, 0, true},
      {42, 1, false, 3, false}, {7, 4, false, 3, true},
      {42, 1, true, 3, false},  {7, 4, true, 3, true},
  };
  for (const MatrixConfig& c : combos) {
    const std::string label =
        strategy_name + " seed=" + std::to_string(c.seed) +
        " threads=" + std::to_string(c.threads) +
        (c.sharded ? " sharded" : " dense") +
        (c.edges > 0 ? " hier" : " flat") +
        (c.encoded ? " encoded" : " analytic");

    SimEngine ref_engine = make_matrix_engine(c);
    auto ref_strategy = make_matrix_strategy(strategy_name);
    CaptureHook hook;
    hook.id = ref_strategy->name();
    hook.strategy = ref_strategy.get();
    const RunResult ref = ref_engine.run(*ref_strategy, &hook);
    ASSERT_TRUE(hook.captured) << label;

    // The snapshot goes through the full byte codec, like a real file.
    const std::vector<uint8_t> bytes = ckpt::encode_snapshot(hook.snap);
    const ckpt::Snapshot snap =
        ckpt::decode_snapshot(bytes.data(), bytes.size());

    SimEngine res_engine = make_matrix_engine(c);
    auto res_strategy = make_matrix_strategy(strategy_name);
    ckpt::restore_sync_run(snap, res_engine, *res_strategy);
    const RunResult res = res_engine.run_from(
        *res_strategy, snap.next_round, ckpt::history_result(snap));

    expect_identical_runs(ref, res, label);
    EXPECT_EQ(ref_engine.params(), res_engine.params()) << label;
    EXPECT_EQ(ref_engine.stats(), res_engine.stats()) << label;
  }
}

TEST(CkptResume, FedAvgMatrix) { run_sync_matrix("fedavg"); }
TEST(CkptResume, StcMatrix) { run_sync_matrix("stc"); }
TEST(CkptResume, ApfMatrix) { run_sync_matrix("apf"); }
TEST(CkptResume, GlueFlMatrix) { run_sync_matrix("gluefl"); }

TEST(CkptResume, AsyncFedBuffMatrix) {
  const MatrixConfig combos[] = {
      {42, 1, false, 0, false}, {7, 4, false, 0, true},
      {42, 1, true, 0, false},  {7, 4, true, 0, true},
      {42, 1, false, 3, false}, {7, 4, false, 3, true},
      {42, 1, true, 3, false},  {7, 4, true, 3, true},
  };
  for (const MatrixConfig& c : combos) {
    const std::string label =
        "async-fedbuff seed=" + std::to_string(c.seed) +
        " threads=" + std::to_string(c.threads) +
        (c.sharded ? " sharded" : " dense") +
        (c.edges > 0 ? " hier" : " flat") +
        (c.encoded ? " encoded" : " analytic");
    AsyncConfig acfg;
    acfg.buffer_size = 4;
    acfg.concurrency = 8;

    SimEngine ref_engine = make_matrix_engine(c);
    AsyncSimEngine ref_async(ref_engine, acfg);
    AsyncFedBuffStrategy ref_strategy{AsyncFedBuffConfig{}};
    CaptureHook hook;
    hook.id = ref_strategy.name();
    hook.strategy = &ref_strategy;
    const RunResult ref = ref_async.run(ref_strategy, &hook);
    ASSERT_TRUE(hook.captured) << label;
    ASSERT_TRUE(hook.snap.has_async) << label;

    const std::vector<uint8_t> bytes = ckpt::encode_snapshot(hook.snap);
    const ckpt::Snapshot snap =
        ckpt::decode_snapshot(bytes.data(), bytes.size());

    SimEngine res_engine = make_matrix_engine(c);
    AsyncSimEngine res_async(res_engine, acfg);
    AsyncFedBuffStrategy res_strategy{AsyncFedBuffConfig{}};
    AsyncRunState state =
        ckpt::restore_async_run(snap, res_engine, res_strategy);
    const RunResult res = res_async.resume(res_strategy, std::move(state),
                                           ckpt::history_result(snap));

    expect_identical_runs(ref, res, label);
    EXPECT_EQ(ref_engine.params(), res_engine.params()) << label;
    EXPECT_EQ(ref_engine.stats(), res_engine.stats()) << label;
  }
}

// Availability churn uses an engine-owned trace reconstructed from the
// master seed: resume must line up with it without snapshotting it.
TEST(CkptResume, SurvivesAvailabilityChurn) {
  RunConfig rc = tiny_run_config(kRounds, 6, 42);
  rc.eval_every = 2;
  rc.use_availability = true;
  auto build = [&rc]() {
    return SimEngine(make_synthetic_dataset(tiny_spec()), tiny_proxy(),
                     make_edge_env(), tiny_train_config(), rc);
  };
  SimEngine ref_engine = build();
  auto ref_strategy = make_matrix_strategy("gluefl");
  CaptureHook hook;
  hook.id = ref_strategy->name();
  hook.strategy = ref_strategy.get();
  const RunResult ref = ref_engine.run(*ref_strategy, &hook);
  ASSERT_TRUE(hook.captured);

  SimEngine res_engine = build();
  auto res_strategy = make_matrix_strategy("gluefl");
  ckpt::restore_sync_run(hook.snap, res_engine, *res_strategy);
  const RunResult res = res_engine.run_from(
      *res_strategy, hook.snap.next_round, ckpt::history_result(hook.snap));
  expect_identical_runs(ref, res, "availability");
  EXPECT_EQ(ref_engine.params(), res_engine.params());
}

// ------------------------------------------------------ hook behaviour

TEST(CkptHook, SavesOnCadenceAndSkipsFinalBoundary) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("ckpt_test_hook");
  fs::create_directories(dir);

  MatrixConfig c;
  SimEngine engine = make_matrix_engine(c);
  auto strategy = make_matrix_strategy("fedavg");
  ckpt::CkptOptions opts;
  opts.every = 2;
  opts.dir = dir.string();
  ckpt::CheckpointHook hook(opts, {{"strategy", "fedavg"}}, "fedavg",
                            *strategy);
  engine.run(*strategy, &hook);

  // rounds = 6, every = 2: boundaries 2 and 4 saved, 6 (final) skipped.
  EXPECT_EQ(hook.saves(), 2);
  EXPECT_TRUE(fs::exists(ckpt::checkpoint_path(opts.dir, 2)));
  EXPECT_TRUE(fs::exists(ckpt::checkpoint_path(opts.dir, 4)));
  EXPECT_FALSE(fs::exists(ckpt::checkpoint_path(opts.dir, 6)));
  fs::remove_all(dir);
}

TEST(CkptHook, CrashThrowsAfterSavingDueSnapshot) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path("ckpt_test_crash");
  fs::create_directories(dir);

  MatrixConfig c;
  SimEngine engine = make_matrix_engine(c);
  auto strategy = make_matrix_strategy("fedavg");
  ckpt::CkptOptions opts;
  opts.every = 2;
  opts.dir = dir.string();
  opts.crash_at = 4;
  ckpt::CheckpointHook hook(opts, {{"strategy", "fedavg"}}, "fedavg",
                            *strategy);
  try {
    engine.run(*strategy, &hook);
    FAIL() << "expected SimulatedCrash";
  } catch (const ckpt::SimulatedCrash& crash) {
    EXPECT_EQ(crash.boundary(), 4);
    // The boundary-4 snapshot is persisted BEFORE the crash fires.
    EXPECT_EQ(crash.last_checkpoint(), ckpt::checkpoint_path(opts.dir, 4));
    EXPECT_TRUE(fs::exists(crash.last_checkpoint()));
  }
  fs::remove_all(dir);
}

// -------------------------------------------------- restore validation

TEST(CkptRestore, RejectsSeedMismatch) {
  MatrixConfig c;
  SimEngine engine = make_matrix_engine(c);
  auto strategy = make_matrix_strategy("fedavg");
  CaptureHook hook;
  hook.id = strategy->name();
  hook.strategy = strategy.get();
  engine.run(*strategy, &hook);

  MatrixConfig other = c;
  other.seed = 1234;
  SimEngine wrong = make_matrix_engine(other);
  auto strategy2 = make_matrix_strategy("fedavg");
  EXPECT_THROW(ckpt::restore_sync_run(hook.snap, wrong, *strategy2),
               ckpt::CkptError);
}

TEST(CkptRestore, RejectsDuplicateInFlightClients) {
  // A tampered async snapshot with two events for one client would
  // double-complete it and starve the other flagged client forever.
  MatrixConfig c;
  AsyncConfig acfg;
  acfg.buffer_size = 4;
  acfg.concurrency = 8;

  SimEngine ref_engine = make_matrix_engine(c);
  AsyncSimEngine ref_async(ref_engine, acfg);
  AsyncFedBuffStrategy ref_strategy{AsyncFedBuffConfig{}};
  CaptureHook hook;
  hook.id = ref_strategy.name();
  hook.strategy = &ref_strategy;
  ref_async.run(ref_strategy, &hook);
  ASSERT_TRUE(hook.captured);

  SimEngine res_engine = make_matrix_engine(c);
  AsyncSimEngine res_async(res_engine, acfg);
  AsyncFedBuffStrategy res_strategy{AsyncFedBuffConfig{}};
  AsyncRunState state =
      ckpt::restore_async_run(hook.snap, res_engine, res_strategy);
  ASSERT_GE(state.events.size(), 2u);
  state.events[0].client = state.events[1].client;
  EXPECT_THROW(res_async.resume(res_strategy, std::move(state),
                                ckpt::history_result(hook.snap)),
               ckpt::CkptError);
}

TEST(CkptRestore, RejectsStrategyMismatch) {
  MatrixConfig c;
  SimEngine engine = make_matrix_engine(c);
  auto strategy = make_matrix_strategy("fedavg");
  CaptureHook hook;
  hook.id = strategy->name();
  hook.strategy = strategy.get();
  engine.run(*strategy, &hook);

  SimEngine engine2 = make_matrix_engine(c);
  auto stc = make_matrix_strategy("stc");
  EXPECT_THROW(ckpt::restore_sync_run(hook.snap, engine2, *stc),
               ckpt::CkptError);
}

}  // namespace
}  // namespace gluefl
